type state = Pending | Fired | Cancelled

type handle = {
  time : Time.t;
  seq : int;
  fn : unit -> unit;
  mutable state : state;
  owner : t;
}

and t = {
  mutable clock : Time.t;
  mutable next_seq : int;
  q : handle Heap.t;
  mutable dead : int; (* cancelled handles still buried in the heap *)
}

let compare_handle a b =
  let c = compare a.time b.time in
  if c <> 0 then c else compare a.seq b.seq

let create () =
  { clock = Time.zero; next_seq = 0; q = Heap.create ~cmp:compare_handle; dead = 0 }

let now sim = sim.clock

let schedule_at sim time fn =
  if time < sim.clock then
    invalid_arg
      (Format.asprintf "Sim.schedule_at: %a is before now (%a)" Time.pp time
         Time.pp sim.clock);
  let h = { time; seq = sim.next_seq; fn; state = Pending; owner = sim } in
  sim.next_seq <- sim.next_seq + 1;
  Heap.push sim.q h;
  h

let schedule_after sim span fn = schedule_at sim (sim.clock + span) fn

(* Periodic-timer churn (scheduler ticks, governor sampling) cancels events
   constantly; reap the tombstones in bulk once they outnumber live events,
   so the queue tracks the live population instead of growing with churn. *)
let maybe_reap sim =
  if sim.dead > 64 && sim.dead * 2 > Heap.size sim.q then begin
    Heap.filter_in_place sim.q ~keep:(fun h -> h.state = Pending);
    sim.dead <- 0
  end

let cancel h =
  match h.state with
  | Pending ->
      h.state <- Cancelled;
      h.owner.dead <- h.owner.dead + 1;
      maybe_reap h.owner
  | Fired | Cancelled -> ()

let cancelled h = h.state = Cancelled

(* Pop the next handle, discarding tombstones. *)
let rec pop_live sim =
  match Heap.pop sim.q with
  | None -> None
  | Some h when h.state = Cancelled ->
      sim.dead <- sim.dead - 1;
      pop_live sim
  | Some h -> Some h

let run_until sim limit =
  let rec loop () =
    match Heap.peek sim.q with
    | Some h when h.time <= limit ->
        ignore (Heap.pop sim.q);
        (match h.state with
        | Cancelled -> sim.dead <- sim.dead - 1
        | Pending ->
            h.state <- Fired;
            sim.clock <- h.time;
            h.fn ()
        | Fired -> assert false);
        loop ()
    | Some _ | None -> ()
  in
  loop ();
  if limit > sim.clock then sim.clock <- limit

let run sim =
  let rec loop () =
    match pop_live sim with
    | Some h ->
        h.state <- Fired;
        sim.clock <- h.time;
        h.fn ();
        loop ()
    | None -> ()
  in
  loop ()

let pending sim = Heap.size sim.q - sim.dead
let queue_length sim = Heap.size sim.q

(* ------------------------------------------------------------------ *)
(* Periodic events                                                      *)

type periodic = { mutable current : handle option; mutable stopped : bool }

let schedule_every sim ?start span fn =
  if span <= 0 then invalid_arg "Sim.schedule_every: period must be positive";
  let p = { current = None; stopped = false } in
  let rec fire () =
    if not p.stopped then begin
      (* re-arm before running the body, so events the body schedules for
         the same future instant fire after the next tick (FIFO order) *)
      p.current <- Some (schedule_after sim span fire);
      fn ()
    end
  in
  let first = match start with Some t -> t | None -> sim.clock + span in
  p.current <- Some (schedule_at sim first fire);
  p

let cancel_every p =
  p.stopped <- true;
  (match p.current with Some h -> cancel h | None -> ());
  p.current <- None

let periodic_stopped p = p.stopped
