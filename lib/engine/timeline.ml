type t = {
  mutable times : int array;
  mutable values : float array;
  (* cum.(i) is the integral of the step function from times.(0) to
     times.(i), in value-seconds. Invariant:
       cum.(0) = 0
       cum.(i) = cum.(i-1) + values.(i-1) * (times.(i) - times.(i-1))
     so any window integral is two O(log n) lookups and O(1) arithmetic. *)
  mutable cum : float array;
  mutable len : int;
  retention : Time.span option;
  (* energy of breakpoints discarded by compaction, so [energy_at] stays
     origin-stable across compactions *)
  mutable dropped_j : float;
  mutable dropped : int;
}

let create ?(initial = 0.0) ?retention () =
  (match retention with
  | Some r when r <= 0 -> invalid_arg "Timeline.create: retention must be positive"
  | _ -> ());
  {
    times = Array.make 16 0;
    values = Array.make 16 initial;
    cum = Array.make 16 0.0;
    len = 1;
    retention;
    dropped_j = 0.0;
    dropped = 0;
  }

let ensure_capacity tl =
  if tl.len = Array.length tl.times then begin
    let ncap = tl.len * 2 in
    let times = Array.make ncap 0
    and values = Array.make ncap 0.0
    and cum = Array.make ncap 0.0 in
    Array.blit tl.times 0 times 0 tl.len;
    Array.blit tl.values 0 values 0 tl.len;
    Array.blit tl.cum 0 cum 0 tl.len;
    tl.times <- times;
    tl.values <- values;
    tl.cum <- cum
  end

let last_time tl = tl.times.(tl.len - 1)
let length tl = tl.len
let dropped tl = tl.dropped

(* Index of the last breakpoint at or before [t]. *)
let index_at tl t =
  if t >= last_time tl then tl.len - 1
  else begin
    let lo = ref 0 and hi = ref (tl.len - 1) in
    (* invariant: times.(lo) <= t < times.(hi) *)
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if tl.times.(mid) <= t then lo := mid else hi := mid
    done;
    !lo
  end

let compact tl ~before =
  let keep_from = if before >= last_time tl then tl.len - 1 else index_at tl before in
  if keep_from = 0 then 0
  else begin
    let n = tl.len - keep_from in
    tl.dropped_j <- tl.dropped_j +. tl.cum.(keep_from);
    let base = tl.cum.(keep_from) in
    Array.blit tl.times keep_from tl.times 0 n;
    Array.blit tl.values keep_from tl.values 0 n;
    for i = 0 to n - 1 do
      tl.cum.(i) <- tl.cum.(keep_from + i) -. base
    done;
    tl.len <- n;
    tl.dropped <- tl.dropped + keep_from;
    keep_from
  end

let set tl t v =
  let last = last_time tl in
  if t < last then
    invalid_arg
      (Format.asprintf "Timeline.set: %a is before last breakpoint %a" Time.pp
         t Time.pp last);
  if t = last then tl.values.(tl.len - 1) <- v
  else if tl.values.(tl.len - 1) <> v then begin
    ensure_capacity tl;
    tl.times.(tl.len) <- t;
    tl.values.(tl.len) <- v;
    tl.cum.(tl.len) <-
      tl.cum.(tl.len - 1)
      +. (tl.values.(tl.len - 1) *. Time.to_sec_f (t - last));
    tl.len <- tl.len + 1;
    match tl.retention with
    | Some r when t - tl.times.(0) > 2 * r -> ignore (compact tl ~before:(t - r))
    | _ -> ()
  end

let value_at tl t = if t < tl.times.(0) then tl.values.(0) else tl.values.(index_at tl t)

let breakpoints tl =
  let rec build i acc =
    if i < 0 then acc else build (i - 1) ((tl.times.(i), tl.values.(i)) :: acc)
  in
  build (tl.len - 1) []

let iter_breakpoints tl ~f =
  for i = 0 to tl.len - 1 do
    f tl.times.(i) tl.values.(i)
  done

let energy_at tl t =
  let i = if t < tl.times.(0) then 0 else index_at tl t in
  tl.dropped_j +. tl.cum.(i) +. (tl.values.(i) *. Time.to_sec_f (t - tl.times.(i)))

let integrate tl t0 t1 =
  if t1 < t0 then invalid_arg "Timeline.integrate: reversed interval";
  if t1 = t0 then 0.0 else energy_at tl t1 -. energy_at tl t0

let mean tl t0 t1 =
  if t1 <= t0 then value_at tl t0
  else integrate tl t0 t1 /. Time.to_sec_f (t1 - t0)

let samples tl ~period ~from ~until =
  if period <= 0 then invalid_arg "Timeline.samples: period must be positive";
  let n = ((until - from) / period) + 1 in
  let n = max n 0 in
  Array.init n (fun k ->
      let t = from + (k * period) in
      (t, value_at tl t))

let iter_samples tl ~period ~from ~until ~f =
  if period <= 0 then invalid_arg "Timeline.iter_samples: period must be positive";
  (* incremental index walk: samples arrive in time order, so each one only
     ever moves the breakpoint index forward — no per-sample binary search *)
  let i = ref (if from < tl.times.(0) then 0 else index_at tl from) in
  let t = ref from in
  while !t <= until do
    while !i + 1 < tl.len && tl.times.(!i + 1) <= !t do
      incr i
    done;
    f !t tl.values.(!i);
    t := !t + period
  done

let fold_intervals tl ~from ~until ~init ~f =
  let acc = ref init in
  let i = ref (index_at tl (max from tl.times.(0))) in
  let cursor = ref from in
  while !cursor < until do
    let seg_end = if !i + 1 < tl.len then min tl.times.(!i + 1) until else until in
    let seg_end = max seg_end !cursor in
    if seg_end > !cursor then acc := f !acc !cursor seg_end tl.values.(!i);
    cursor := seg_end;
    if !i + 1 < tl.len && !cursor >= tl.times.(!i + 1) then incr i
  done;
  !acc

let map_intervals tl ~from ~until ~f =
  List.rev
    (fold_intervals tl ~from ~until ~init:[] ~f:(fun acc s e v ->
         f s e v :: acc))
