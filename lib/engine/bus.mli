(** Synchronous publish/subscribe event bus.

    The instrumentation spine of the simulator: producers (power rails, DVFS
    governors) publish typed events, and any number of observers (meters,
    accountants, governors, figure code) subscribe without the producer
    knowing about them. Delivery is synchronous and in subscription order,
    which keeps runs deterministic; a bus with no subscribers makes
    publishing effectively free, so hot paths can publish unconditionally. *)

type 'a t
(** A bus carrying events of type ['a]. *)

type subscription
(** A handle on one subscriber, usable to unsubscribe. *)

val create : unit -> 'a t

val subscribe : 'a t -> ('a -> unit) -> subscription
(** [subscribe bus fn] registers [fn] to be called on every subsequent
    publication, after all earlier subscribers. A subscriber added while a
    publication is in flight does not receive that event. *)

val unsubscribe : subscription -> unit
(** Remove a subscriber. Idempotent. A subscriber removed while a
    publication is in flight is not called for the remaining deliveries of
    that event. *)

val active : subscription -> bool

val publish : 'a t -> 'a -> unit
(** Deliver an event to every active subscriber, synchronously, in
    subscription order. *)

val subscriber_count : 'a t -> int
