(** Hashed hierarchical timing wheel (Varghese & Lauck) with an exact-order
    front-end.

    A wheel stores elements keyed by a non-negative integer time and pops
    them in the exact order of a caller-supplied comparator (which must
    refine the time order — e.g. [(time, seq)] for FIFO-within-instant).
    Near-future elements hash into O(1) unordered slot lists across
    [levels] wheels of [2^wheel_bits] slots whose widths grow by
    [2^wheel_bits] per level, starting at [2^granularity_bits] time units;
    elements beyond the top level's horizon wait in an overflow list and
    cascade back in when the cursor reaches them. Exact ordering is
    recovered by a small heap holding only the current granule's elements,
    so pop cost tracks the population of one granule, not the whole queue.

    Times must not decrease below the wheel's cursor position once elements
    have been popped past them — which holds for any discrete-event queue
    that never schedules into the past. *)

type 'a t

val create :
  ?granularity_bits:int ->
  ?wheel_bits:int ->
  ?levels:int ->
  dummy:'a ->
  cmp:('a -> 'a -> int) ->
  time:('a -> int) ->
  unit ->
  'a t
(** [create ~dummy ~cmp ~time ()] builds an empty wheel. Defaults: 16
    granularity bits (65.536 µs granules at 1 ns resolution), 5 wheel bits
    (32 slots per level), 6 levels (≈ 19.5 h horizon). Slots are backed by
    growable arrays that are retained across rotations, so steady-state
    insert/cascade is allocation-free; [dummy] backs the unused tail of
    each slot array (it is never compared or returned).
    @raise Invalid_argument if any size parameter is non-positive or the
    total span exceeds the integer time domain. *)

val push : 'a t -> 'a -> unit
(** @raise Invalid_argument if [time x] is negative. *)

val pop : 'a t -> 'a option
(** Remove and return the minimum element under [cmp]. *)

val peek : 'a t -> 'a option
(** Return the minimum element without removing it. Like {!pop}, may
    advance the internal cursor and cascade slots. *)

val top : 'a t -> 'a
(** Allocation-free {!peek}. Undefined on an empty wheel — callers must
    check {!size} first. *)

val drop : 'a t -> unit
(** Allocation-free {!pop} that discards the minimum element. Must only be
    called on a non-empty wheel. *)

val size : 'a t -> int
val is_empty : 'a t -> bool

val clear : 'a t -> unit
(** Empty the wheel and rewind the cursor to zero, keeping the slot
    backing arrays — a cleared wheel is reusable from time zero. *)

val filter_in_place : 'a t -> keep:('a -> bool) -> unit
(** Drop every element for which [keep] is [false] (tombstone reaping). *)

(** {1 Introspection} — layout observers for tests and diagnostics. *)

val granule : 'a t -> int
(** Width of a level-0 slot. *)

val level_span : 'a t -> int -> int
(** [level_span t l] is the total time span covered by levels [0..l]. *)

val wheel_span : 'a t -> int
(** Horizon of the top level; later elements overflow. *)

val cursor : 'a t -> int
(** Granule floor of the current position. *)

val overflow_count : 'a t -> int
val ready_count : 'a t -> int
(** Elements currently in the overflow list / the exact-order front heap. *)
