type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* SplitMix64: advance by the golden gamma, then mix. *)
let next_state st =
  st.state <- Int64.add st.state golden_gamma;
  st.state

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = { state = mix64 (Int64.of_int seed) }
let bits64 rng = mix64 (next_state rng)
let split rng = { state = bits64 rng }

(* Child seed [i] of a parent seed, independent of any draw order: the
   parent state jumps [i + 1] gammas ahead and is mixed once more. Two
   mixing rounds keep children decorrelated from each other and from the
   parent's own output stream (which never uses the +1 offset pattern at
   rest). *)
let derive ~seed i =
  if i < 0 then invalid_arg "Rng.derive: index must be non-negative";
  let parent = mix64 (Int64.of_int seed) in
  let jumped =
    Int64.add parent (Int64.mul (Int64.of_int (i + 1)) golden_gamma)
  in
  Int64.to_int (mix64 (mix64 jumped))

let int rng n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  let v = Int64.to_int (Int64.shift_right_logical (bits64 rng) 2) in
  v mod n

let float rng x =
  (* 53 random bits scaled into [0, 1). *)
  let v = Int64.to_float (Int64.shift_right_logical (bits64 rng) 11) in
  v /. 9007199254740992.0 *. x

let bool rng = Int64.logand (bits64 rng) 1L = 1L
let bernoulli rng ~p = float rng 1.0 < p
let uniform rng ~lo ~hi = lo +. float rng (hi -. lo)

let exponential rng ~mean =
  let u = 1.0 -. float rng 1.0 in
  -.mean *. log u

let gaussian rng ~mu ~sigma =
  let u1 = 1.0 -. float rng 1.0 in
  let u2 = float rng 1.0 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let pick rng a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int rng (Array.length a))

let shuffle rng a =
  for i = Array.length a - 1 downto 1 do
    let j = int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
