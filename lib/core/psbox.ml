open Psbox_engine
module System = Psbox_kernel.System
module Smp = Psbox_kernel.Smp
module Accel_driver = Psbox_kernel.Accel_driver
module Net_sched = Psbox_kernel.Net_sched
module Power_vstate = Psbox_kernel.Power_vstate
module Power_rail = Psbox_hw.Power_rail
module Sample = Psbox_meter.Sample
module Tm = Psbox_telemetry.Metrics
module Tt = Psbox_telemetry.Tracing
module Audit = Psbox_audit.Audit

type target = Cpu | Gpu | Dsp | Wifi | Display | Gps

let target_label = function
  | Cpu -> "cpu"
  | Gpu -> "gpu"
  | Dsp -> "dsp"
  | Wifi -> "wifi"
  | Display -> "display"
  | Gps -> "gps"

let psbox_track = "core.psbox"
let m_enters = Tm.counter "psbox.enters"
let m_leaves = Tm.counter "psbox.leaves"
let m_balloons = Tm.counter "psbox.balloons"

exception Not_in_psbox

(* What the virtual meter reports outside the psbox's balloons: flat idle
   power for CPU/accelerators; for the NIC, the app's *virtual* power-save
   machine — awake for its own tail after each balloon, then power-save. *)
type idle_model =
  | Flat of float
  | Nic_tail of { awake_w : float; ps_w : float; tail : Time.span }

type binding = {
  b_target : target;
  b_rail : Power_rail.t;
  b_idle : idle_model;
  b_vstate : Power_vstate.t option;
      (* devices with entanglement-free attribution (display, GPS) need no
         state virtualization *)
  mutable b_closed : (Time.t * Time.t) list; (* newest first *)
  mutable b_open : Time.t option;
  mutable b_attach : unit -> unit;
  mutable b_detach : unit -> unit;
}

(* Virtual idle power at [t], given the end of the psbox's most recent
   balloon before [t] (if any). *)
let idle_power_at model ~last_end t =
  match model with
  | Flat w -> w
  | Nic_tail { awake_w; ps_w; tail } -> (
      match last_end with
      | Some t_end when t - t_end <= tail -> awake_w
      | Some _ | None -> ps_w)

(* Virtual idle energy over a gap [g0, g1] that begins right where a
   balloon ended iff [after_balloon]. *)
let idle_energy_j model ~after_balloon g0 g1 =
  let dt = Time.to_sec_f (g1 - g0) in
  match model with
  | Flat w -> w *. dt
  | Nic_tail { awake_w; ps_w; tail } ->
      if after_balloon then begin
        let tail_s = Time.to_sec_f (min tail (g1 - g0)) in
        (awake_w *. tail_s) +. (ps_w *. (dt -. tail_s))
      end
      else ps_w *. dt

type t = {
  sys : System.t;
  p_app : int;
  bindings : binding list;
  mutable inside : bool;
  mutable entered_at : Time.t;
  mutable blame_at_enter : (Audit.cause * float) list;
  mutable last_stay_blame : (string * float) list;
}

(* Global registry enforcing one psbox per (system, app, target). *)
let registry : (Obj.t * int * target) list ref = ref []

let registered sys app target =
  List.exists
    (fun (s, a, tg) -> s == Obj.repr sys && a = app && tg = target)
    !registry

let register sys app target = registry := (Obj.repr sys, app, target) :: !registry

let unregister sys app target =
  registry :=
    List.filter
      (fun (s, a, tg) -> not (s == Obj.repr sys && a = app && tg = target))
      !registry

let now psbox = Sim.now (System.sim psbox.sys)

let record_start binding t = binding.b_open <- Some t

let record_stop binding t =
  match binding.b_open with
  | Some t0 ->
      binding.b_closed <- (t0, t) :: binding.b_closed;
      Tm.incr m_balloons;
      if Tt.recording () then
        Tt.span ~track:psbox_track ~lane:(target_label binding.b_target)
          ~name:"balloon" ~start:t0 ~stop:t ();
      binding.b_open <- None
  | None -> ()

let make_binding sys ~app ~virtualize target =
  let sim = System.sim sys in
  let vs_start vstate () = if virtualize then Power_vstate.on_balloon_start vstate in
  let vs_stop vstate () = if virtualize then Power_vstate.on_balloon_stop vstate in
  (* Display and GPS power is entanglement-free (§7): the per-app rail is
     already an exact, insulated view, so the binding's "balloon" is simply
     the whole stay inside the box. *)
  let direct_view ~target ~rail ~idle =
    let binding =
      {
        b_target = target;
        b_rail = rail;
        b_idle = Flat idle;
        b_vstate = None;
        b_closed = [];
        b_open = None;
        b_attach = (fun () -> ());
        b_detach = (fun () -> ());
      }
    in
    binding.b_attach <- (fun () -> record_start binding (Sim.now sim));
    binding.b_detach <- (fun () -> record_stop binding (Sim.now sim));
    binding
  in
  match target with
  | Cpu ->
      let cpu = System.cpu sys in
      let vstate = Power_vstate.create sim (Power_vstate.Cpu_dev cpu) in
      let binding =
        {
          b_target = Cpu;
          b_rail = Psbox_hw.Cpu.rail cpu;
          b_idle = Flat (Power_rail.idle_w (Psbox_hw.Cpu.rail cpu));
          b_vstate = Some vstate;
          b_closed = [];
          b_open = None;
          b_attach = (fun () -> ());
          b_detach = (fun () -> ());
        }
      in
      let balloon = ref None in
      binding.b_attach <-
        (fun () ->
          let b = Smp.sandbox (System.smp sys) ~app in
          Smp.set_balloon_listener b
            ~on_start:(fun () ->
              vs_start vstate ();
              record_start binding (Sim.now sim))
            ~on_stop:(fun () ->
              record_stop binding (Sim.now sim);
              vs_stop vstate ());
          balloon := Some b);
      binding.b_detach <-
        (fun () ->
          match !balloon with
          | Some b ->
              Smp.unsandbox (System.smp sys) b;
              balloon := None
          | None -> ());
      binding
  | Gpu | Dsp ->
      let driver = if target = Gpu then System.gpu sys else System.dsp sys in
      let dev = Accel_driver.device driver in
      let vstate = Power_vstate.create sim (Power_vstate.Accel_dev dev) in
      let binding =
        {
          b_target = target;
          b_rail = Psbox_hw.Accel.rail dev;
          b_idle = Flat (Power_rail.idle_w (Psbox_hw.Accel.rail dev));
          b_vstate = Some vstate;
          b_closed = [];
          b_open = None;
          b_attach = (fun () -> ());
          b_detach = (fun () -> ());
        }
      in
      binding.b_attach <-
        (fun () ->
          Accel_driver.set_balloon_listener driver
            ~on_start:(fun () ->
              vs_start vstate ();
              record_start binding (Sim.now sim))
            ~on_stop:(fun () ->
              record_stop binding (Sim.now sim);
              vs_stop vstate ());
          Accel_driver.sandbox driver ~app);
      binding.b_detach <- (fun () -> Accel_driver.unsandbox driver);
      binding
  | Wifi ->
      let netd = System.net sys in
      let nic = Net_sched.nic netd in
      let vstate = Power_vstate.create sim (Power_vstate.Wifi_dev nic) in
      let binding =
        {
          b_target = Wifi;
          b_rail = Psbox_hw.Wifi.rail nic;
          b_idle =
            Nic_tail
              {
                awake_w = Psbox_hw.Wifi.awake_w nic;
                ps_w = Psbox_hw.Wifi.ps_w nic;
                tail = Psbox_hw.Wifi.tail nic;
              };
          b_vstate = Some vstate;
          b_closed = [];
          b_open = None;
          b_attach = (fun () -> ());
          b_detach = (fun () -> ());
        }
      in
      binding.b_attach <-
        (fun () ->
          Net_sched.set_balloon_listener netd
            ~on_start:(fun () ->
              vs_start vstate ();
              record_start binding (Sim.now sim))
            ~on_stop:(fun () ->
              record_stop binding (Sim.now sim);
              vs_stop vstate ());
          Net_sched.sandbox netd ~app);
      binding.b_detach <- (fun () -> Net_sched.unsandbox netd);
      binding
  | Display ->
      let d = System.display sys in
      direct_view ~target:Display
        ~rail:(Psbox_hw.Display.app_rail d ~app)
        ~idle:0.0
  | Gps ->
      let g = System.gps sys in
      direct_view ~target:Gps
        ~rail:(Psbox_hw.Gps.app_rail g ~app)
        ~idle:(Power_rail.idle_w (Psbox_hw.Gps.app_rail g ~app))

let create ?(virtualize_power_state = true) sys ~app ~hw =
  if hw = [] then invalid_arg "Psbox.create: empty hardware set";
  let hw = List.sort_uniq compare hw in
  List.iter
    (fun target ->
      if registered sys app target then
        invalid_arg "Psbox.create: app already has a psbox on this target";
      match target with
      | Gpu when not (System.has_gpu sys) -> invalid_arg "Psbox.create: no GPU"
      | Dsp when not (System.has_dsp sys) -> invalid_arg "Psbox.create: no DSP"
      | Wifi when not (System.has_wifi sys) ->
          invalid_arg "Psbox.create: no WiFi"
      | Display when not (System.has_display sys) ->
          invalid_arg "Psbox.create: no display"
      | Gps when not (System.has_gps sys) ->
          invalid_arg "Psbox.create: no GPS"
      | Cpu | Gpu | Dsp | Wifi | Display | Gps -> ())
    hw;
  List.iter (fun target -> register sys app target) hw;
  let bindings =
    List.map (make_binding sys ~app ~virtualize:virtualize_power_state) hw
  in
  {
    sys;
    p_app = app;
    bindings;
    inside = false;
    entered_at = Time.zero;
    blame_at_enter = [];
    last_stay_blame = [];
  }

let enter psbox =
  if not psbox.inside then begin
    psbox.inside <- true;
    psbox.entered_at <- now psbox;
    (* snapshot the joule-audit blame matrix so [leave] can report the
       per-cause energy this stay was billed for *)
    psbox.blame_at_enter <-
      (match Audit.lookup psbox.sys with
      | Some a -> Audit.app_blame a ~app:psbox.p_app
      | None -> []);
    Tm.incr m_enters;
    if Tt.recording () then
      Tt.instant ~track:psbox_track
        ~lane:("app" ^ string_of_int psbox.p_app)
        ~name:"enter" (now psbox);
    List.iter (fun b -> b.b_attach ()) psbox.bindings
  end

let leave psbox =
  if psbox.inside then begin
    List.iter (fun b -> b.b_detach ()) psbox.bindings;
    psbox.inside <- false;
    (match Audit.lookup psbox.sys with
    | Some a ->
        let after = Audit.app_blame a ~app:psbox.p_app in
        let get l c =
          match List.assoc_opt c l with Some j -> j | None -> 0.0
        in
        psbox.last_stay_blame <-
          List.filter_map
            (fun c ->
              let d = get after c -. get psbox.blame_at_enter c in
              if d <> 0.0 then Some (Audit.cause_label c, d) else None)
            [
              Audit.Active;
              Audit.Shared_rail;
              Audit.Lingering;
              Audit.Dvfs_transition;
              Audit.Idle_floor;
            ]
    | None -> ());
    Tm.incr m_leaves;
    if Tt.recording () then
      Tt.instant ~track:psbox_track
        ~lane:("app" ^ string_of_int psbox.p_app)
        ~name:"leave" (now psbox)
  end

let inside psbox = psbox.inside
let stay_blame psbox = psbox.last_stay_blame
let app psbox = psbox.p_app
let targets psbox = List.map (fun b -> b.b_target) psbox.bindings

(* Balloon intervals of one binding clipped to [from, until], oldest
   first. *)
let clipped_intervals binding ~from ~until =
  let all =
    (match binding.b_open with Some t0 -> [ (t0, until) ] | None -> [])
    @ binding.b_closed
  in
  List.rev all
  |> List.filter_map (fun (t0, t1) ->
         let t0 = max t0 from and t1 = min t1 until in
         if t1 > t0 then Some (t0, t1) else None)

(* Energy of one binding over a window under the virtual meter's masking
   rules: rail power (clamped up to the suspend floor when the device is
   off/suspended) inside balloons; the virtual idle model outside. *)
let masked_energy_j binding ~from ~until =
  let floor_w = Power_rail.idle_w binding.b_rail in
  let tl = Power_rail.timeline binding.b_rail in
  let intervals = clipped_intervals binding ~from ~until in
  let balloon_j =
    List.fold_left
      (fun acc (t0, t1) ->
        Timeline.fold_intervals tl ~from:t0 ~until:t1 ~init:acc
          ~f:(fun acc s e v ->
            acc +. (Float.max v floor_w *. Time.to_sec_f (e - s))))
      0.0 intervals
  in
  (* walk the gaps between balloons with the virtual idle model *)
  let rec gaps acc cursor after_balloon = function
    | [] ->
        if until > cursor then
          acc +. idle_energy_j binding.b_idle ~after_balloon cursor until
        else acc
    | (t0, t1) :: rest ->
        let acc =
          if t0 > cursor then
            acc +. idle_energy_j binding.b_idle ~after_balloon cursor t0
          else acc
        in
        gaps acc t1 true rest
  in
  balloon_j +. gaps 0.0 from false intervals

let read_mj psbox =
  if not psbox.inside then raise Not_in_psbox;
  let from = psbox.entered_at and until = now psbox in
  List.fold_left
    (fun acc b -> acc +. masked_energy_j b ~from ~until)
    0.0 psbox.bindings
  *. 1e3

let samples_of_binding ?(period = Time.us 10) binding ~from ~until =
  let floor_w = Power_rail.idle_w binding.b_rail in
  let tl = Power_rail.timeline binding.b_rail in
  let intervals = ref (clipped_intervals binding ~from ~until) in
  let last_end = ref None in
  let n = ((until - from) / period) + 1 in
  Array.init (max n 0) (fun k ->
      let t = from + (k * period) in
      (* advance past intervals that ended before t *)
      let rec skip () =
        match !intervals with
        | (_, t1) :: rest when t1 < t ->
            last_end := Some t1;
            intervals := rest;
            skip ()
        | _ -> ()
      in
      skip ();
      let in_balloon =
        match !intervals with (t0, t1) :: _ -> t >= t0 && t <= t1 | [] -> false
      in
      let w =
        if in_balloon then Float.max (Timeline.value_at tl t) floor_w
        else idle_power_at binding.b_idle ~last_end:!last_end t
      in
      Sample.make t w)

let sample_target ?period psbox target =
  if not psbox.inside then raise Not_in_psbox;
  match List.find_opt (fun b -> b.b_target = target) psbox.bindings with
  | None -> invalid_arg "Psbox.sample_target: target not bound"
  | Some b ->
      samples_of_binding ?period b ~from:psbox.entered_at ~until:(now psbox)

let sample ?(period = Time.us 10) psbox =
  if not psbox.inside then raise Not_in_psbox;
  let from = psbox.entered_at and until = now psbox in
  let per_binding =
    List.map (fun b -> samples_of_binding ~period b ~from ~until) psbox.bindings
  in
  match per_binding with
  | [] -> [||]
  | first :: rest ->
      Array.mapi
        (fun i s ->
          let watts =
            List.fold_left (fun acc arr -> acc +. arr.(i).Sample.watts) s.Sample.watts rest
          in
          Sample.make s.Sample.time watts)
        first

let exclusive_us psbox =
  let from = psbox.entered_at and until = now psbox in
  List.fold_left
    (fun acc b ->
      acc
      +. List.fold_left
           (fun acc (t0, t1) -> acc +. Time.to_us_f (t1 - t0))
           0.0
           (clipped_intervals b ~from ~until))
    0.0 psbox.bindings

let exclusive_intervals psbox =
  let from = psbox.entered_at and until = now psbox in
  List.concat_map (fun b -> clipped_intervals b ~from ~until) psbox.bindings

let destroy psbox =
  leave psbox;
  List.iter (fun b -> unregister psbox.sys psbox.p_app b.b_target) psbox.bindings
