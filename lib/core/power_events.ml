open Psbox_engine
module Sample = Psbox_meter.Sample
module Sensor_hub = Psbox_meter.Sensor_hub
module System = Psbox_kernel.System

type predicate =
  | Above of { watts : float; lasting : Time.span }
  | Below of { watts : float; lasting : Time.span }
  | Spike of { delta_w : float; within : Time.span }
  | Rising of { lasting : Time.span }

(* First time a [cmp]-satisfying stretch reaches [lasting]. *)
let stretch samples ~lasting ~ok =
  let n = Array.length samples in
  let rec scan i start =
    if i >= n then None
    else if ok samples.(i).Sample.watts then begin
      let s = match start with Some s -> s | None -> samples.(i).Sample.time in
      if samples.(i).Sample.time - s >= lasting then Some s
      else scan (i + 1) (Some s)
    end
    else scan (i + 1) None
  in
  scan 0 None

let evaluate pred samples =
  match pred with
  | Above { watts; lasting } -> stretch samples ~lasting ~ok:(fun w -> w > watts)
  | Below { watts; lasting } -> stretch samples ~lasting ~ok:(fun w -> w < watts)
  | Spike { delta_w; within } ->
      let n = Array.length samples in
      let rec scan i =
        if i >= n then None
        else begin
          (* compare against the minimum inside the trailing window *)
          let rec back j lo =
            if j < 0 || samples.(i).Sample.time - samples.(j).Sample.time > within
            then lo
            else back (j - 1) (Float.min lo samples.(j).Sample.watts)
          in
          let lo = back (i - 1) Float.infinity in
          if samples.(i).Sample.watts -. lo >= delta_w then
            Some samples.(i).Sample.time
          else scan (i + 1)
        end
      in
      scan 1
  | Rising { lasting } ->
      let n = Array.length samples in
      let rec scan i start_idx =
        if i >= n then None
        else if samples.(i).Sample.watts >= samples.(i - 1).Sample.watts then begin
          let s = match start_idx with Some s -> s | None -> i - 1 in
          if
            samples.(i).Sample.time - samples.(s).Sample.time >= lasting
            && samples.(i).Sample.watts > samples.(s).Sample.watts
          then Some samples.(s).Sample.time
          else scan (i + 1) (Some s)
        end
        else scan (i + 1) None
      in
      if n < 2 then None else scan 1 None

type subscription = {
  mutable live : bool;
  mutable count : int;
  mutable tick : Sim.periodic option;
}

let subscribe ?hub ?(period = Time.ms 50) ?(sample_period = Time.ms 1) sys box
    ~predicate callback =
  let sub = { live = true; count = 0; tick = None } in
  let sim = System.sim sys in
  let fire t =
    sub.count <- sub.count + 1;
    callback t
  in
  let tick () =
    if sub.live && Psbox.inside box then begin
      let samples = Psbox.sample ~period:sample_period box in
      (* only this period's window *)
      let now = Sim.now sim in
      let window = Sample.between samples ~from:(now - period) ~until:now in
      let deliver () =
        if sub.live then
          match evaluate predicate window with
          | Some t -> fire t
          | None -> ()
      in
      match hub with
      | Some h ->
          Sensor_hub.process h ~samples:(Array.length window) ~on_done:deliver
      | None -> deliver ()
    end
  in
  sub.tick <- Some (Sim.schedule_every sim period tick);
  sub

let cancel sub =
  sub.live <- false;
  match sub.tick with
  | Some p ->
      Sim.cancel_every p;
      sub.tick <- None
  | None -> ()

let fired sub = sub.count
