(** Power sandbox — the paper's new OS principal (§3).

    A psbox encloses one app and exposes a {e virtual power meter}: the app
    observes the power of itself running in its vertical slice of the
    hardware/software stack, insulated from the impacts of concurrent apps.
    The kernel enforces the boundary with resource balloons (spatial on the
    CPU, temporal on accelerators and the NIC) and virtualizes hardware
    power states per psbox; in the virtual meter, the only possible
    contribution of other apps is idle power.

    Mirroring Listing 1 of the paper:
    {[
      let box = Psbox.create sys ~app ~hw:[ Psbox.Cpu ] in
      Psbox.enter box;
      (* ... run the phase of interest ... *)
      let samples = Psbox.sample box in        (* timestamped, 10 us default *)
      let energy = Psbox.read_mj box in        (* accumulated energy *)
      Psbox.leave box
    ]}

    Power is only observable from inside the box ({!read_mj} / {!sample}
    raise {!Not_in_psbox} otherwise); entering and leaving are free-form and
    cheap, supporting the intended "pay as you go" usage. *)

type target = Cpu | Gpu | Dsp | Wifi | Display | Gps
(** [Display] and [Gps] are the §7 extension components: their power is
    entanglement-free, so the psbox view is an exact per-app attribution
    rather than a balloon-metered one. *)

exception Not_in_psbox

type t

val create :
  ?virtualize_power_state:bool ->
  Psbox_kernel.System.t ->
  app:int ->
  hw:target list ->
  t
(** Create a psbox for an app, bound to a set of hardware components (the
    granularity of one rail each, as the prototype hardware supports).
    [virtualize_power_state] (default true) is the paper's per-sandbox
    save/restore of operating/idle states; it exists as a switch only for
    the ablation bench.
    @raise Invalid_argument on an empty or unavailable target set, or if the
    app already has a psbox covering one of the targets. *)

val enter : t -> unit
(** Enter the sandbox: the kernel begins enforcing resource balloons for the
    app on every bound component, and the virtual power meter starts.
    Idempotent. *)

val leave : t -> unit
(** Leave: balloons are released (temporal balloons close after their drain
    phase) and power observation stops. Decisions made from observations
    remain valid outside — the vertical environment is preserved.
    Idempotent. *)

val inside : t -> bool

val app : t -> int
val targets : t -> target list

val read_mj : t -> float
(** Accumulated energy in millijoules since {!enter}, summed over the bound
    components, integrated exactly over the virtual meter's view
    (balloon power inside the app's exclusive intervals; idle power
    elsewhere; off/suspended periods masked as idle).
    @raise Not_in_psbox when called outside the box. *)

val sample : ?period:Psbox_engine.Time.span -> t -> Psbox_meter.Sample.t array
(** Timestamped virtual-meter samples since {!enter} (default period 10 us —
    the 100 kHz of the paper's prototype), summed over bound components.
    @raise Not_in_psbox when called outside the box. *)

val sample_target :
  ?period:Psbox_engine.Time.span -> t -> target -> Psbox_meter.Sample.t array
(** Per-component samples. @raise Not_in_psbox when outside. *)

val exclusive_us : t -> float
(** Total microseconds of exclusive (balloon) hardware time granted to this
    psbox since {!enter} (diagnostics). *)

val stay_blame : t -> (string * float) list
(** The joule-audit view of the app's last completed stay: per-cause
    joules ({!Psbox_audit.Audit.cause_label} × J) the attribution ledger
    blamed on this app between the last {!enter} and {!leave}, summed over
    all rails. Makes insulation auditable: after a balloon'd stay, the
    app's shared-rail blame should be on the balloon owner, not leaked to
    neighbours. Empty when auditing is off or the box was never left. *)

val exclusive_intervals : t -> (Psbox_engine.Time.t * Psbox_engine.Time.t) list
(** The exclusive intervals themselves (all bound components merged,
    unsorted across components), since {!enter}. *)

val destroy : t -> unit
(** Leave if necessary and unregister the psbox. *)
