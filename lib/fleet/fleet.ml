open Psbox_engine
module System = Psbox_kernel.System
module Task = Psbox_kernel.Task
module Entity = Psbox_kernel.Entity
module W = Psbox_workloads.Workload
module Budget = Psbox_budget.Budget
module Audit = Psbox_audit.Audit
module Health = Psbox_health.Health
module Tm = Psbox_telemetry.Metrics

type params = {
  p_idle_scale : float;
  p_cores : int;
  p_up_threshold : float;
  p_intensity : float;
  p_cap_w : float;
}

type device = {
  d_index : int;
  d_seed : int;
  d_params : params;
  d_energy_j : (string * float) list;
  d_cause_j : (string * float) list;
  d_violations : int;
  d_windows : int;
  d_total_j : float;
  d_metrics : Tm.export;
  d_incidents : (string * int) list;
}

type dist = {
  p50 : float;
  p95 : float;
  p99 : float;
  mean : float;
  min : float;
  max : float;
}

type summary = {
  s_scenario : string;
  s_seed : int;
  s_devices : int;
  s_energy : (string * dist) list;
  s_total : dist;
  s_cause_share : (string * float) list;
  s_violation_rate : float;
  s_violations : dist;
  s_metrics : Tm.export;
  s_incident_rates : (string * float) list;
}

let scenario_ids = [ "budget"; "steady"; "mixed" ]

(* ---- per-device heterogeneity -------------------------------------- *)

(* Device i draws from two independent child seeds of the fleet seed:
   an even-indexed one for its heterogeneity sample, an odd-indexed one
   for its system RNG — so re-sampling params never perturbs the device's
   own event stream, and vice versa. *)
let params_of ~scenario ~fleet_seed idx =
  ignore scenario;
  let rng = Rng.create ~seed:(Rng.derive ~seed:fleet_seed (2 * idx)) in
  let p_idle_scale = Rng.uniform rng ~lo:0.85 ~hi:1.15 in
  let p_cores = if Rng.bool rng then 2 else 1 in
  let p_up_threshold = Rng.uniform rng ~lo:0.70 ~hi:0.95 in
  let p_intensity = Rng.uniform rng ~lo:0.8 ~hi:1.2 in
  let p_cap_w = Rng.uniform rng ~lo:0.8 ~hi:1.6 in
  { p_idle_scale; p_cores; p_up_threshold; p_intensity; p_cap_w }

let device_seed ~fleet_seed idx = Rng.derive ~seed:fleet_seed ((2 * idx) + 1)

(* ---- scenarios ------------------------------------------------------ *)

let burst p base_s = Time.of_sec_f (base_s *. p.p_intensity)

let governor p =
  Psbox_hw.Dvfs.Ondemand
    { up_threshold = p.p_up_threshold; sampling = Time.ms 20 }

let machine ?gpu ?wifi ~sys_seed p =
  System.create ~seed:sys_seed ~cores:p.p_cores ~cpu_governor:(governor p)
    ~cpu_idle_w:(0.3 *. p.p_idle_scale) ?gpu ?wifi ()

(* Observe-only per-device health: the default rule pack with no
   responders, so attaching it never changes a device's event stream —
   only its incident log. *)
let health_engine ~health sys =
  if not health then None
  else begin
    let eng = Health.create (System.sim sys) () in
    Health.add_rules eng (Health.default_pack sys);
    Some eng
  end

let finish_health = function
  | None -> []
  | Some eng ->
      Health.stop eng;
      Health.incident_counts eng

(* Each scenario returns the machine, its audit ledger, the capped app's
   control history (empty when nothing is capped) and its fired-incident
   counts (empty unless [health]). *)
let run_scenario ~health ~scenario ~sys_seed p =
  match scenario with
  | "budget" ->
      (* An interactive tenant with a duty-cycled frame loop sharing the
         machine with a capped batch spinner — the single-device [budget]
         experiment's shape, heterogeneity applied. *)
      let sys = machine ~sys_seed p in
      let audit = Audit.attach sys in
      let ui = System.new_app sys ~name:"interactive" in
      let batch = System.new_app sys ~name:"batch" in
      ignore
        (W.spawn sys ~app:ui ~name:"frames"
           (W.forever (fun () ->
                [
                  W.Compute (burst p 0.0035);
                  W.Sleep (Time.ms 12);
                  W.Count ("frames", 1.0);
                ])));
      ignore
        (W.spawn sys ~app:batch ~name:"crunch"
           ~core:(if p.p_cores > 1 then 1 else 0)
           (W.forever (fun () ->
                [ W.Compute (Time.ms 5); W.Count ("units", 1.0) ])));
      System.start sys;
      let eng = health_engine ~health sys in
      let ctl = Budget.create sys () in
      Budget.set_cap ctl ~app:batch.System.app_id ~watts:p.p_cap_w;
      System.run_for sys (Time.sec 2);
      let hist = Budget.history ctl ~app:batch.System.app_id in
      Budget.stop ctl;
      let incs = finish_health eng in
      System.shutdown sys;
      (sys, audit, hist, incs)
  | "steady" ->
      let sys = machine ~sys_seed p in
      let audit = Audit.attach sys in
      let worker = System.new_app sys ~name:"worker" in
      ignore
        (W.spawn sys ~app:worker ~name:"loop"
           (W.forever (fun () ->
                [
                  W.Compute (burst p 0.002);
                  W.Sleep (Time.ms 3);
                  W.Count ("units", 1.0);
                ])));
      System.start sys;
      let eng = health_engine ~health sys in
      System.run_for sys (Time.sec 2);
      let incs = finish_health eng in
      System.shutdown sys;
      (sys, audit, [], incs)
  | "mixed" ->
      (* A render tenant burning CPU + GPU + WiFi per frame, capped, next
         to an uncapped sync tenant — exercises multi-rail attribution and
         enforcement in every device. *)
      let sys = machine ~gpu:true ~wifi:true ~sys_seed p in
      let audit = Audit.attach sys in
      let render = System.new_app sys ~name:"render" in
      let sync = System.new_app sys ~name:"sync" in
      ignore
        (W.spawn sys ~app:render ~name:"frame"
           (W.forever (fun () ->
                [
                  W.Compute (burst p 0.001);
                  W.Gpu_batch [ W.spec ~kind:"frame" ~work_s:0.002 () ];
                  W.Send { socket = 1; bytes = 8_000 };
                  W.Count ("frames", 1.0);
                ])));
      ignore
        (W.spawn sys ~app:sync ~name:"push"
           (W.forever (fun () ->
                [
                  W.Compute (Time.us 500);
                  W.Send { socket = 2; bytes = 16_000 };
                  W.Sleep (Time.ms 20);
                  W.Count ("sends", 1.0);
                ])));
      System.start sys;
      let eng = health_engine ~health sys in
      let ctl = Budget.create sys () in
      Budget.set_cap ctl ~app:render.System.app_id ~watts:p.p_cap_w;
      System.run_for sys (Time.sec 2);
      let hist = Budget.history ctl ~app:render.System.app_id in
      Budget.stop ctl;
      let incs = finish_health eng in
      System.shutdown sys;
      (sys, audit, hist, incs)
  | other -> invalid_arg ("Fleet: unknown scenario " ^ other)

(* ---- one device ----------------------------------------------------- *)

let cause_totals audit =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun rail ->
      List.iter
        (fun (r : Audit.row) ->
          let l = Audit.cause_label r.r_cause in
          let cur =
            match Hashtbl.find_opt tbl l with Some x -> x | None -> 0.0
          in
          Hashtbl.replace tbl l (cur +. r.r_j))
        (Audit.rows audit ~rail))
    (Audit.rails audit);
  List.map
    (fun c ->
      let l = Audit.cause_label c in
      (l, match Hashtbl.find_opt tbl l with Some j -> j | None -> 0.0))
    Audit.all_causes

let app_energies audit sys =
  System.apps sys
  |> List.map (fun (app : System.app) ->
         let j =
           List.fold_left
             (fun acc (_, j) -> acc +. j)
             0.0
             (Audit.app_blame audit ~app:app.System.app_id)
         in
         (app.System.app_name, j))
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* The first measurement window (the controller's averaging horizon) is
   warm-up: the loop cannot have converged before it has even filled its
   window, and counting it would flag every device. Violations are
   steady-state overshoots only. *)
let warmup_windows = 8

let count_violations hist =
  List.fold_left
    (fun (viol, windows) (_, measured, cap) ->
      let windows = windows + 1 in
      let viol =
        if
          windows > warmup_windows
          && Float.is_finite cap
          && measured > cap *. 1.05
        then viol + 1
        else viol
      in
      (viol, windows))
    (0, 0) hist

let run_device ?(health = false) ~scenario ~fleet_seed idx =
  if not (List.mem scenario scenario_ids) then
    invalid_arg ("Fleet: unknown scenario " ^ scenario);
  let p = params_of ~scenario ~fleet_seed idx in
  let sys_seed = device_seed ~fleet_seed idx in
  Tm.with_fresh_store (fun () ->
      (* The device's world starts from zero: ids restart, metrics land in
         the fresh store, and its audit ledger must not register into this
         domain's report-mode registry. *)
      Task.reset_ids ();
      Entity.reset_ids ();
      let saved_report = Audit.report_mode () in
      Audit.set_report_mode false;
      Fun.protect
        ~finally:(fun () -> Audit.set_report_mode saved_report)
        (fun () ->
          let sys, audit, hist, d_incidents =
            run_scenario ~health ~scenario ~sys_seed p
          in
          let d_violations, d_windows = count_violations hist in
          let dev =
            {
              d_index = idx;
              d_seed = sys_seed;
              d_params = p;
              d_energy_j = app_energies audit sys;
              d_cause_j = cause_totals audit;
              d_violations;
              d_windows;
              d_total_j = System.live_energy_j sys;
              d_metrics = Tm.export ();
              d_incidents;
            }
          in
          (* hand the device's simulator scratch (queue arrays, slot pool)
             back to this worker's cache so the next device skips warm-up
             allocation *)
          Sim.retire (System.sim sys);
          dev))

(* ---- work-stealing domain pool -------------------------------------- *)

(* Each worker owns a contiguous [lo, hi) index range under one mutex;
   a dry worker steals the top half of the largest remaining range (only
   when it holds at least 2 items, so steals are never empty). Results
   land by index, so scheduling order is invisible in the output. *)
let pool_map ~jobs n f =
  if n = 0 then [||]
  else if jobs <= 1 then Array.init n f
  else begin
    let jobs = min jobs n in
    let results = Array.make n None in
    let mu = Mutex.create () in
    let lo = Array.init jobs (fun w -> w * n / jobs) in
    let hi = Array.init jobs (fun w -> (w + 1) * n / jobs) in
    let take w =
      Mutex.protect mu (fun () ->
          if lo.(w) < hi.(w) then begin
            let i = lo.(w) in
            lo.(w) <- i + 1;
            Some i
          end
          else begin
            let victim = ref (-1) and best = ref 1 in
            for v = 0 to jobs - 1 do
              let avail = hi.(v) - lo.(v) in
              if avail > !best then begin
                victim := v;
                best := avail
              end
            done;
            if !victim < 0 then None
            else begin
              let v = !victim in
              let mid = lo.(v) + (((hi.(v) - lo.(v)) + 1) / 2) in
              let s_hi = hi.(v) in
              hi.(v) <- mid;
              lo.(w) <- mid + 1;
              hi.(w) <- s_hi;
              Some mid
            end
          end)
    in
    (* Fresh domains default to `Wheel with pooling on; propagate the
       caller's --sched and --pool choices so device event queues behave
       identically in every shard. *)
    let backend = Sim.default_backend () in
    let pooling = Sim.default_pooling () in
    let worker w () =
      Sim.set_default_backend backend;
      Sim.set_default_pooling pooling;
      let rec go () =
        match take w with
        | Some i ->
            results.(i) <- Some (f i);
            go ()
        | None -> ()
      in
      go ()
    in
    let domains =
      Array.init (jobs - 1) (fun k -> Domain.spawn (worker (k + 1)))
    in
    Fun.protect
      ~finally:(fun () -> Array.iter Domain.join domains)
      (fun () -> worker 0 ());
    Array.map
      (function Some r -> r | None -> failwith "Fleet: unprocessed device")
      results
  end

let run_devices ?(jobs = 1) ?health ~scenario ~devices ~seed () =
  if devices < 0 then invalid_arg "Fleet.run_devices: negative device count";
  if not (List.mem scenario scenario_ids) then
    invalid_arg ("Fleet: unknown scenario " ^ scenario);
  pool_map ~jobs devices (fun i ->
      run_device ?health ~scenario ~fleet_seed:seed i)

(* ---- reduction ------------------------------------------------------ *)

(* Exact order statistics: rank ceil(q*n) in the sorted copy. No
   interpolation, so equal populations give equal bytes. *)
let dist_of values =
  let n = Array.length values in
  if n = 0 then { p50 = 0.0; p95 = 0.0; p99 = 0.0; mean = 0.0; min = 0.0; max = 0.0 }
  else begin
    let sorted = Array.copy values in
    Array.sort compare sorted;
    let q p =
      let rank = int_of_float (Float.ceil (p *. float_of_int n)) - 1 in
      sorted.(Stdlib.max 0 (Stdlib.min (n - 1) rank))
    in
    let sum = Array.fold_left ( +. ) 0.0 values in
    {
      p50 = q 0.50;
      p95 = q 0.95;
      p99 = q 0.99;
      mean = sum /. float_of_int n;
      min = sorted.(0);
      max = sorted.(n - 1);
    }
  end

let summarize ~scenario ~seed devices =
  let n = Array.length devices in
  let classes =
    Array.fold_left
      (fun acc d -> List.fold_left (fun acc (c, _) -> c :: acc) acc d.d_energy_j)
      [] devices
    |> List.sort_uniq String.compare
  in
  let s_energy =
    List.map
      (fun cls ->
        let values =
          Array.map
            (fun d ->
              match List.assoc_opt cls d.d_energy_j with
              | Some j -> j
              | None -> 0.0)
            devices
        in
        (cls, dist_of values))
      classes
  in
  let s_total = dist_of (Array.map (fun d -> d.d_total_j) devices) in
  let fleet_j = Array.fold_left (fun acc d -> acc +. d.d_total_j) 0.0 devices in
  let s_cause_share =
    List.map
      (fun c ->
        let l = Psbox_audit.Audit.cause_label c in
        let j =
          Array.fold_left
            (fun acc d ->
              match List.assoc_opt l d.d_cause_j with
              | Some j -> acc +. j
              | None -> acc)
            0.0 devices
        in
        (l, if fleet_j > 0.0 then j /. fleet_j else 0.0))
      Psbox_audit.Audit.all_causes
  in
  let violated =
    Array.fold_left
      (fun acc d -> if d.d_violations > 0 then acc + 1 else acc)
      0 devices
  in
  let s_violations =
    dist_of (Array.map (fun d -> float_of_int d.d_violations) devices)
  in
  let s_metrics =
    Array.fold_left (fun acc d -> Tm.merge acc d.d_metrics) [] devices
  in
  (* fired incidents per rule per 1000 devices — the fleet operations
     number: "how often does this alert fire across the population" *)
  let s_incident_rates =
    let tbl = Hashtbl.create 8 in
    Array.iter
      (fun d ->
        List.iter
          (fun (rule, c) ->
            Hashtbl.replace tbl rule
              (c + Option.value ~default:0 (Hashtbl.find_opt tbl rule)))
          d.d_incidents)
      devices;
    Hashtbl.fold (fun rule c acc -> (rule, c) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.map (fun (rule, c) ->
           (rule, float_of_int c *. 1000.0 /. float_of_int (Stdlib.max n 1)))
  in
  {
    s_scenario = scenario;
    s_seed = seed;
    s_devices = n;
    s_energy;
    s_total;
    s_cause_share;
    s_violation_rate =
      (if n = 0 then 0.0 else float_of_int violated /. float_of_int n);
    s_violations;
    s_metrics;
    s_incident_rates;
  }

let run ?jobs ?health ~scenario ~devices ~seed () =
  summarize ~scenario ~seed
    (run_devices ?jobs ?health ~scenario ~devices ~seed ())

(* ---- rendering ------------------------------------------------------ *)

let pp_device fmt d =
  Format.fprintf fmt
    "device %d seed=%d idle_scale=%.17g cores=%d up_threshold=%.17g \
     intensity=%.17g cap_w=%.17g@\n"
    d.d_index d.d_seed d.d_params.p_idle_scale d.d_params.p_cores
    d.d_params.p_up_threshold d.d_params.p_intensity d.d_params.p_cap_w;
  List.iter
    (fun (cls, j) -> Format.fprintf fmt "energy %s %.17g@\n" cls j)
    d.d_energy_j;
  List.iter
    (fun (c, j) -> Format.fprintf fmt "cause %s %.17g@\n" c j)
    d.d_cause_j;
  List.iter
    (fun (rule, c) -> Format.fprintf fmt "incident %s %d@\n" rule c)
    d.d_incidents;
  Format.fprintf fmt "violations %d/%d@\n" d.d_violations d.d_windows;
  Format.fprintf fmt "total_j %.17g@\n" d.d_total_j;
  List.iter
    (fun (name, row) -> Format.fprintf fmt "metric %s %s@\n" name row)
    (Tm.export_rows d.d_metrics)

(* JSON values: integers render without a fraction, everything else
   %.17g (round-trips every double). Keys in fixed order. *)
let json_num v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let json_str s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let pp_dist fmt d =
  Format.fprintf fmt
    "{\"p50\":%s,\"p95\":%s,\"p99\":%s,\"mean\":%s,\"min\":%s,\"max\":%s}"
    (json_num d.p50) (json_num d.p95) (json_num d.p99) (json_num d.mean)
    (json_num d.min) (json_num d.max)

let pp_json fmt s =
  Format.fprintf fmt "{@\n";
  Format.fprintf fmt
    "  \"fleet\": {\"scenario\": %s, \"seed\": %d, \"devices\": %d},@\n"
    (json_str s.s_scenario) s.s_seed s.s_devices;
  Format.fprintf fmt "  \"energy_j\": {";
  List.iteri
    (fun i (cls, d) ->
      if i > 0 then Format.fprintf fmt ", ";
      Format.fprintf fmt "%s: %a" (json_str cls) pp_dist d)
    s.s_energy;
  Format.fprintf fmt "},@\n";
  Format.fprintf fmt "  \"total_j\": %a,@\n" pp_dist s.s_total;
  Format.fprintf fmt "  \"cause_share\": {";
  List.iteri
    (fun i (c, share) ->
      if i > 0 then Format.fprintf fmt ", ";
      Format.fprintf fmt "%s: %s" (json_str c) (json_num share))
    s.s_cause_share;
  Format.fprintf fmt "},@\n";
  Format.fprintf fmt
    "  \"violations\": {\"rate\": %s, \"per_device\": %a},@\n"
    (json_num s.s_violation_rate) pp_dist s.s_violations;
  Format.fprintf fmt "  \"incidents_per_1000\": {";
  List.iteri
    (fun i (rule, rate) ->
      if i > 0 then Format.fprintf fmt ", ";
      Format.fprintf fmt "%s: %s" (json_str rule) (json_num rate))
    s.s_incident_rates;
  Format.fprintf fmt "},@\n";
  Format.fprintf fmt "  \"metrics\": {";
  let first = ref true in
  List.iter
    (fun (name, v) ->
      match v with
      | Tm.Counter_v x | Tm.Gauge_v x ->
          if !first then first := false else Format.fprintf fmt ", ";
          Format.fprintf fmt "%s: %s" (json_str name) (json_num x)
      | Tm.Histogram_v { edges; counts; sum } ->
          if !first then first := false else Format.fprintf fmt ", ";
          Format.fprintf fmt "%s: {\"edges\": [" (json_str name);
          Array.iteri
            (fun i e ->
              if i > 0 then Format.fprintf fmt ", ";
              Format.fprintf fmt "%s" (json_num e))
            edges;
          Format.fprintf fmt "], \"counts\": [";
          Array.iteri
            (fun i c ->
              if i > 0 then Format.fprintf fmt ", ";
              Format.fprintf fmt "%d" c)
            counts;
          Format.fprintf fmt "], \"sum\": %s}" (json_num sum))
    s.s_metrics;
  Format.fprintf fmt "}@\n";
  Format.fprintf fmt "}@\n"

let json_string s = Format.asprintf "%a" pp_json s
