(** Fleet simulation: a population of devices from one seed.

    The paper evaluates psbox on one board; a deployment decision needs the
    population view — how cap violations, per-app energy and per-cause
    blame {e distribute} over thousands of heterogeneous devices. A fleet
    run instantiates N independent device simulations, each a full
    {!Psbox_kernel.System} plus workload scenario, and reduces their
    results into fleet-level distributions.

    {2 Determinism}

    A fleet run is identified by [(scenario, seed, devices)] and nothing
    else. Device [i] gets two child seeds via {!Psbox_engine.Rng.derive} —
    one samples its heterogeneity {!params}, the other seeds its system
    RNG — so any device can be re-simulated in isolation, in any order, on
    any domain, and produce identical results. Each device runs inside
    {!Psbox_telemetry.Metrics.with_fresh_store} with task/entity ids reset,
    so its outputs depend on its own history only. Reductions fold in
    device-index order. Consequence: the summary (and its JSON) is
    byte-identical across repeated runs and across [~jobs] values.

    {2 Sharding}

    [~jobs > 1] shards devices over [jobs] OCaml domains: each worker owns
    a contiguous index range and steals the top half of the largest
    remaining range when its own runs dry. [~jobs:1] runs everything in
    the calling domain — same results, byte for byte. *)

type params = {
  p_idle_scale : float;
      (** CPU rail idle-floor scale factor, in [0.85, 1.15] — board-level
          power variance *)
  p_cores : int;  (** 1 or 2 *)
  p_up_threshold : float;
      (** ondemand governor trip point, in [0.70, 0.95] — the DVFS-table
          variant knob *)
  p_intensity : float;
      (** workload compute-burst scale, in [0.8, 1.2] *)
  p_cap_w : float;  (** per-device budget cap, watts, in [0.8, 1.6] *)
}

type device = {
  d_index : int;
  d_seed : int;  (** the device's own system seed *)
  d_params : params;
  d_energy_j : (string * float) list;
      (** app class -> attributed joules, sorted by class *)
  d_cause_j : (string * float) list;
      (** cause label -> joules over all rails, canonical cause order,
          zeros included *)
  d_violations : int;
      (** control windows where measured draw exceeded the cap by > 5% *)
  d_windows : int;  (** control windows observed *)
  d_total_j : float;  (** machine energy ledger at end of run *)
  d_metrics : Psbox_telemetry.Metrics.export;
  d_incidents : (string * int) list;
      (** fired health incidents per rule name, sorted by rule; empty
          unless the device ran with [~health:true] *)
}

type dist = {
  p50 : float;
  p95 : float;
  p99 : float;
  mean : float;
  min : float;
  max : float;
}
(** Exact order statistics (no interpolation): [p_q] is the
    [ceil (q * n)]-th smallest value, so the same device population always
    yields the same bytes. *)

type summary = {
  s_scenario : string;
  s_seed : int;
  s_devices : int;
  s_energy : (string * dist) list;
      (** per-device attributed joules by app class, sorted by class *)
  s_total : dist;  (** per-device whole-machine joules *)
  s_cause_share : (string * float) list;
      (** fraction of fleet joules per cause, canonical cause order *)
  s_violation_rate : float;
      (** fraction of devices with at least one cap violation *)
  s_violations : dist;  (** per-device violation counts *)
  s_metrics : Psbox_telemetry.Metrics.export;
      (** all device metric exports merged (counters summed, histograms
          bucket-merged, gauges maxed) in device-index order *)
  s_incident_rates : (string * float) list;
      (** fired health incidents per rule per 1000 devices, sorted by
          rule name — the reduction of every device's incident log *)
}

val scenario_ids : string list
(** Available scenarios: ["budget"] (interactive + capped batch tenant),
    ["steady"] (uncapped steady load), ["mixed"] (GPU + WiFi burn under a
    cap). *)

val params_of : scenario:string -> fleet_seed:int -> int -> params
(** The heterogeneity sample for device [i] — pure in [(fleet_seed, i)]. *)

val run_device :
  ?health:bool -> scenario:string -> fleet_seed:int -> int -> device
(** Simulate device [i] in isolation: fresh metric store, reset id
    counters, its own audit ledger (never registered for reports).
    Deterministic in [(scenario, fleet_seed, i)] alone. With
    [~health:true] (default false) an observe-only
    {!Psbox_health.Health} engine with the default rule pack rides the
    device — no responders, so the event stream is untouched — and its
    fired-incident counts land in {!device.d_incidents}.
    @raise Invalid_argument on an unknown scenario. *)

val run_devices :
  ?jobs:int ->
  ?health:bool ->
  scenario:string -> devices:int -> seed:int -> unit ->
  device array
(** All devices, in index order. [jobs] defaults to 1; values > 1 shard
    across that many domains (capped at [devices]). *)

val summarize : scenario:string -> seed:int -> device array -> summary

val run :
  ?jobs:int ->
  ?health:bool ->
  scenario:string -> devices:int -> seed:int -> unit -> summary

val pp_device : Format.formatter -> device -> unit
(** Canonical textual form, floats [%.17g] — two equal devices render to
    equal bytes (the byte-equality tests compare this). *)

val pp_json : Format.formatter -> summary -> unit
(** The fleet report as deterministic JSON: fixed key order, floats
    [%.17g], independent of [~jobs]. *)

val json_string : summary -> string
